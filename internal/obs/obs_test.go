package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	g := r.Gauge("queue_depth", "Jobs waiting.")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 4",
		"# TYPE queue_depth gauge",
		"queue_depth 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "jobs_total") > strings.Index(out, "queue_depth") {
		t.Errorf("families out of registration order:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Errorf("accessors: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// A boundary observation lands in the bucket whose upper bound it equals —
// the le bound is inclusive, per the exposition format.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "x.", []float64{1, 2})
	h.Observe(1)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `x_bucket{le="1"} 1`) {
		t.Errorf("observation at bound must be inclusive:\n%s", buf.String())
	}
}

func TestVecLabelEscapingAndOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("tenant_requests_total", "Requests.", "tenant")
	v.With(`b"quote`).Inc()
	v.With("a\nnewline").Add(2)
	v.With(`c\slash`).Inc()
	g := r.GaugeVec("tenant_active", "Active.", "tenant")
	g.With("t1").Set(9)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`tenant_requests_total{tenant="a\nnewline"} 2`,
		`tenant_requests_total{tenant="b\"quote"} 1`,
		`tenant_requests_total{tenant="c\\slash"} 1`,
		`tenant_active{tenant="t1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Children of a vec render in sorted label order.
	if !(strings.Index(out, `a\nnewline`) < strings.Index(out, `b\"quote`) &&
		strings.Index(out, `b\"quote`) < strings.Index(out, `c\\slash`)) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestOnCollectRunsBeforeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mirrored_total", "Mirrored.")
	source := uint64(41)
	r.OnCollect(func() { c.Set(source) })
	source = 42
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "mirrored_total 42") {
		t.Errorf("collect hook did not run before render:\n%s", buf.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body: %s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	r.Counter("dup_total", "X.")
}

// Concurrent observers must not lose updates (the histogram sum is
// CAS-maintained float bits).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", "C.", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 4000 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Errorf("record: %v", rec)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering broken: %s", out)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level must error")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format must error")
	}
}
