// Package chaos is a seeded, deterministic fault injector for exercising
// the grid's fault-tolerance paths in tests. It wraps an http.RoundTripper
// to inject the failure modes a real fleet sees — dropped connections,
// latency spikes, mid-restart 5xx, truncated responses, and single-bit
// in-transit damage — and exposes a byte corruptor for the result cache's
// read seam (resultcache.SetReadFault), so the same verification machinery
// that catches a flipped disk bit is covered by tests.
//
// All randomness flows from one seeded source guarded by a mutex: a test
// that performs the same operation sequence against the same seed sees the
// same fault pattern. Under concurrency the schedule still perturbs which
// request draws which fault, so end-to-end tests assert *outcomes*
// (byte-identical results, zero lost cells), not fault placement.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config sets the per-operation fault probabilities (each in [0,1],
// independent rolls, applied in the order the fields are declared).
type Config struct {
	// Seed feeds the deterministic random source.
	Seed int64

	// Drop is the probability a request's connection dies — half the time
	// before the request is sent (the server never sees it), half the time
	// after the response is produced (the server committed, the client
	// never hears). The second half is what makes idempotency bugs visible.
	Drop float64

	// Delay is the probability a request is stalled by a uniform random
	// pause up to MaxDelay before being forwarded.
	Delay float64

	// MaxDelay bounds injected pauses; zero means 50ms.
	MaxDelay time.Duration

	// Err500 is the probability the injector answers 500 itself without
	// forwarding — the shape of a coordinator or fronting proxy
	// mid-restart.
	Err500 float64

	// PartialBody is the probability a response body is truncated halfway
	// through, ending in an unexpected-EOF read error.
	PartialBody float64

	// FlipByte is the probability one random byte is flipped — rolled
	// independently for the request body (when present) and the response
	// body, and used by Corrupt for cache-entry damage. Flipped bytes are
	// what the X-Safespec-Sum wire checksums and the cache entry checksum
	// exist to catch.
	FlipByte float64
}

// Stats counts injected faults (and Passed, requests forwarded untouched).
type Stats struct {
	Drops, Delays, Errs, Partials, Flips, Passed uint64
}

// Injector draws faults from one seeded source. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	st  Stats
}

// New returns an injector rolling faults per cfg from cfg.Seed.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// roll draws one uniform variate and reports whether it lands under p.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// flipIndex picks the byte to damage in an n-byte body.
func (in *Injector) flipIndex(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// pause picks an injected delay duration in (0, MaxDelay].
func (in *Injector) pause() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay))) + 1
}

// count bumps one counter under the lock.
func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	f(&in.st)
}

// errDropped is the transport-shaped error surfaced for a killed
// connection; retry loops treat it like any network fault.
var errDropped = errors.New("chaos: connection dropped")

// Transport wraps inner (nil selects http.DefaultTransport) with fault
// injection. Install it on a client's Transport field.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{in: in, inner: inner}
}

type transport struct {
	in    *Injector
	inner http.RoundTripper
}

// RoundTrip applies the configured faults around one forwarded request.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	dropAfter := false
	if in.roll(in.cfg.Drop) {
		in.count(func(s *Stats) { s.Drops++ })
		// Half the drops happen after the server has processed the
		// request — the dangerous half.
		if !in.roll(0.5) {
			return nil, errDropped
		}
		dropAfter = true
	}
	if in.roll(in.cfg.Delay) {
		in.count(func(s *Stats) { s.Delays++ })
		select {
		case <-time.After(in.pause()):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if in.roll(in.cfg.Err500) {
		in.count(func(s *Stats) { s.Errs++ })
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{},
			Body:          io.NopCloser(strings.NewReader("chaos: injected fault\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	if req.GetBody != nil && in.roll(in.cfg.FlipByte) {
		if creq, err := flipRequestBody(in, req); err == nil {
			in.count(func(s *Stats) { s.Flips++ })
			req = creq
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dropAfter {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, errDropped
	}
	if in.roll(in.cfg.PartialBody) {
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
		resp.Body.Close()
		if rerr == nil && len(b) > 0 {
			in.count(func(s *Stats) { s.Partials++ })
			resp.Body = io.NopCloser(&errAfter{r: strings.NewReader(string(b[:len(b)/2]))})
			return resp, nil
		}
		resp.Body = io.NopCloser(strings.NewReader(string(b)))
	}
	if in.roll(in.cfg.FlipByte) {
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
		resp.Body.Close()
		if rerr == nil && len(b) > 0 {
			in.count(func(s *Stats) { s.Flips++ })
			b[in.flipIndex(len(b))] ^= 0x20
			resp.Body = io.NopCloser(strings.NewReader(string(b)))
			return resp, nil
		}
		resp.Body = io.NopCloser(strings.NewReader(string(b)))
	}
	in.count(func(s *Stats) { s.Passed++ })
	return resp, nil
}

// flipRequestBody clones req with one body byte flipped (length is
// preserved, so Content-Length stays truthful and only the checksum
// betrays the damage).
func flipRequestBody(in *Injector, req *http.Request) (*http.Request, error) {
	rc, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || len(b) == 0 {
		if err == nil {
			err = fmt.Errorf("empty body")
		}
		return nil, err
	}
	b[in.flipIndex(len(b))] ^= 0x20
	creq := req.Clone(req.Context())
	creq.Body = io.NopCloser(strings.NewReader(string(b)))
	creq.ContentLength = int64(len(b))
	return creq, nil
}

// errAfter yields its reader's bytes then an unexpected EOF — a response
// whose connection died mid-body.
type errAfter struct{ r io.Reader }

func (e *errAfter) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Corrupt flips one random byte of b (in a copy) with probability
// Config.FlipByte — the read-fault hook for resultcache.SetReadFault.
// Entries damaged this way must surface as checksum errors, which the
// cache degrades to misses.
func (in *Injector) Corrupt(b []byte) []byte {
	if len(b) == 0 || !in.roll(in.cfg.FlipByte) {
		return b
	}
	in.count(func(s *Stats) { s.Flips++ })
	c := append([]byte(nil), b...)
	c[in.flipIndex(len(c))] ^= 0x20
	return c
}
