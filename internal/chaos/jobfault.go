package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// JobFaults configures worker-level fault injection: faults that fire
// *inside* job execution rather than on the wire, exercising the worker's
// slot containment (recover, watchdog, memory guard) and the coordinator's
// poison-job quarantine. Unlike the transport injector, job faults are
// keyed on the job's content address, not a draw sequence: the same job
// draws the same fault on every worker and every run with the same seed.
// That is exactly the shape of a real poison job — it follows the job
// around the fleet — and it is what makes quarantine tests deterministic.
type JobFaults struct {
	// Seed perturbs the per-job fault assignment; different seeds poison
	// different jobs.
	Seed int64

	// Panic is the probability a job panics in the executor. The panic
	// message is deterministic (derived from the job name only), so a
	// quarantined row's error text is byte-stable across runs.
	Panic float64

	// Stall is the probability a job blocks for StallFor before running,
	// long enough to trip the slot watchdog or the hedge policy.
	Stall float64

	// StallFor is the injected stall length; zero means 2s.
	StallFor time.Duration

	// Alloc is the probability a job grabs AllocBytes of live heap and
	// holds it for AllocHold before running — tripping the worker's soft
	// memory guard when one is set.
	Alloc float64

	// AllocBytes sizes the injected allocation; zero means 256 MiB.
	AllocBytes int64

	// AllocHold is how long the allocation is kept reachable so a polling
	// memory guard can observe it; zero means 500ms.
	AllocHold time.Duration
}

// JobStats counts fired job faults and clean pass-throughs.
type JobStats struct {
	Panics, Stalls, Allocs, Passed uint64
}

// JobInjector assigns faults to jobs per a JobFaults config. Safe for
// concurrent use.
type JobInjector struct {
	cfg JobFaults

	panics, stalls, allocs, passed atomic.Uint64

	mu   sync.Mutex
	sink []byte // keeps injected allocations live until AllocHold elapses
}

// NewJobInjector returns an injector with defaults applied.
func NewJobInjector(cfg JobFaults) *JobInjector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.AllocBytes <= 0 {
		cfg.AllocBytes = 256 << 20
	}
	if cfg.AllocHold <= 0 {
		cfg.AllocHold = 500 * time.Millisecond
	}
	return &JobInjector{cfg: cfg}
}

// JobStats returns a snapshot of fired-fault counters.
func (ji *JobInjector) JobStats() JobStats {
	return JobStats{
		Panics: ji.panics.Load(),
		Stalls: ji.stalls.Load(),
		Allocs: ji.allocs.Load(),
		Passed: ji.passed.Load(),
	}
}

// Fault classes, in the order Classify checks them.
const (
	JobFaultNone  = ""
	JobFaultPanic = "panic"
	JobFaultStall = "stall"
	JobFaultAlloc = "alloc"
)

// Classify returns the fault class this injector assigns to j — the same
// answer for the same (job, seed) on every call, every instance, every
// process. Tests use it to find which job in a matrix is the poison one.
func (ji *JobInjector) Classify(j sweep.Job) string {
	u := ji.roll(j)
	switch {
	case u < ji.cfg.Panic:
		return JobFaultPanic
	case u < ji.cfg.Panic+ji.cfg.Stall:
		return JobFaultStall
	case u < ji.cfg.Panic+ji.cfg.Stall+ji.cfg.Alloc:
		return JobFaultAlloc
	}
	return JobFaultNone
}

// roll maps the job's content address and the seed to a uniform [0,1):
// FNV-64a over the hash hex, xored with a golden-ratio-spread seed, then a
// splitmix64 finalizer to decorrelate the low-entropy xor.
func (ji *JobInjector) roll(j sweep.Job) float64 {
	hex, err := j.Hash()
	if err != nil {
		return 1 // unhashable jobs draw no fault
	}
	h := fnv.New64a()
	h.Write([]byte(hex))
	x := h.Sum64() ^ (uint64(ji.cfg.Seed) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// jobFaultExecutor wraps an inner executor with per-job fault injection.
type jobFaultExecutor struct {
	ji    *JobInjector
	inner sweep.Executor
}

// WrapExecutor returns an executor that fires the injector's assigned
// fault for each job before delegating to inner. A panic fault panics with
// a deterministic message (the worker's slot containment turns it into an
// incident); stall and alloc faults delay or balloon the heap, then run
// the job normally — only external policy (watchdog, memory guard, hedging)
// turns those into failures.
func (ji *JobInjector) WrapExecutor(inner sweep.Executor) sweep.Executor {
	return &jobFaultExecutor{ji: ji, inner: inner}
}

func (e *jobFaultExecutor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	e.inject(ctx, j)
	return e.inner.Execute(ctx, index, j)
}

// ExecuteTimed forwards to the inner executor's timed path when it has
// one, so timing attribution survives the wrapper.
func (e *jobFaultExecutor) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	e.inject(ctx, j)
	if timed, ok := e.inner.(sweep.TimedExecutor); ok {
		return timed.ExecuteTimed(ctx, index, j)
	}
	res, err := e.inner.Execute(ctx, index, j)
	return res, nil, err
}

func (e *jobFaultExecutor) inject(ctx context.Context, j sweep.Job) {
	switch e.ji.Classify(j) {
	case JobFaultPanic:
		e.ji.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected poison panic for job %s", j.String()))
	case JobFaultStall:
		e.ji.stalls.Add(1)
		t := time.NewTimer(e.ji.cfg.StallFor)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	case JobFaultAlloc:
		e.ji.allocs.Add(1)
		buf := make([]byte, e.ji.cfg.AllocBytes)
		// Touch a byte per page so the pages are really committed.
		for i := int64(0); i < e.ji.cfg.AllocBytes; i += 4096 {
			buf[i] = 1
		}
		e.ji.mu.Lock()
		e.ji.sink = buf
		e.ji.mu.Unlock()
		t := time.NewTimer(e.ji.cfg.AllocHold)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		e.ji.mu.Lock()
		e.ji.sink = nil
		e.ji.mu.Unlock()
	default:
		e.ji.passed.Add(1)
	}
}
