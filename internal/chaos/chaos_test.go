package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer answers every request with a fixed JSON-ish body and echoes
// the request body length in a header so tests can see request mutation.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		b, _ := io.ReadAll(req.Body)
		w.Header().Set("X-Echo-Body", string(b))
		io.WriteString(w, `{"ok":true,"payload":"0123456789abcdef"}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// outcome classifies one request for determinism comparison.
func outcome(client *http.Client, url string) string {
	resp, err := client.Post(url, "application/json", strings.NewReader(`{"n":42}`))
	if err != nil {
		return "err:" + errClass(err)
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	switch {
	case resp.StatusCode == http.StatusInternalServerError:
		return "500"
	case rerr != nil:
		return "partial"
	case string(b) != `{"ok":true,"payload":"0123456789abcdef"}`:
		return "flipped:" + string(b)
	case resp.Header.Get("X-Echo-Body") != `{"n":42}`:
		return "reqflip:" + resp.Header.Get("X-Echo-Body")
	default:
		return "ok"
	}
}

func errClass(err error) string {
	if strings.Contains(err.Error(), "connection dropped") {
		return "dropped"
	}
	return "other"
}

// TestTransportDeterministic: the same seed and the same sequential request
// sequence produce the same fault pattern, outcome for outcome.
func TestTransportDeterministic(t *testing.T) {
	srv := echoServer(t)
	cfg := Config{Seed: 7, Drop: 0.2, Err500: 0.2, PartialBody: 0.2, FlipByte: 0.2, MaxDelay: time.Millisecond}
	run := func() ([]string, Stats) {
		in := New(cfg)
		client := &http.Client{Transport: in.Transport(nil)}
		var got []string
		for i := 0; i < 40; i++ {
			got = append(got, outcome(client, srv.URL))
		}
		return got, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged between identically seeded runs: %q vs %q", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("fault counters diverged: %+v vs %+v", sa, sb)
	}
	if sa.Drops == 0 || sa.Errs == 0 || sa.Partials == 0 || sa.Flips == 0 {
		t.Fatalf("40 requests at 20%% rates should hit every fault class: %+v", sa)
	}
}

// TestTransportFaultShapes pins each injected fault's observable shape at
// probability 1 (drop excepted — it coin-flips pre/post send).
func TestTransportFaultShapes(t *testing.T) {
	srv := echoServer(t)

	t.Run("err500", func(t *testing.T) {
		in := New(Config{Seed: 1, Err500: 1})
		got := outcome(&http.Client{Transport: in.Transport(nil)}, srv.URL)
		if got != "500" {
			t.Fatalf("want synthesized 500, got %q", got)
		}
	})
	t.Run("drop", func(t *testing.T) {
		in := New(Config{Seed: 1, Drop: 1})
		for i := 0; i < 8; i++ {
			if got := outcome(&http.Client{Transport: in.Transport(nil)}, srv.URL); !strings.HasPrefix(got, "err:dropped") {
				t.Fatalf("want dropped connection, got %q", got)
			}
		}
		if st := in.Stats(); st.Drops != 8 {
			t.Fatalf("drop counter %d, want 8", st.Drops)
		}
	})
	t.Run("partial", func(t *testing.T) {
		in := New(Config{Seed: 1, PartialBody: 1})
		if got := outcome(&http.Client{Transport: in.Transport(nil)}, srv.URL); got != "partial" {
			t.Fatalf("want truncated body read error, got %q", got)
		}
	})
	t.Run("flip", func(t *testing.T) {
		in := New(Config{Seed: 1, FlipByte: 1})
		got := outcome(&http.Client{Transport: in.Transport(nil)}, srv.URL)
		// Both the request and the response roll at p=1: the echoed request
		// body and/or the response body must differ from what was sent.
		if got == "ok" {
			t.Fatalf("flip at p=1 left request and response untouched")
		}
	})
	t.Run("delay", func(t *testing.T) {
		in := New(Config{Seed: 1, Delay: 1, MaxDelay: 5 * time.Millisecond})
		if got := outcome(&http.Client{Transport: in.Transport(nil)}, srv.URL); got != "ok" {
			t.Fatalf("delay must not alter the exchange, got %q", got)
		}
		if st := in.Stats(); st.Delays != 1 || st.Passed != 1 {
			t.Fatalf("delay counters: %+v", st)
		}
	})
}

// TestCorrupt: the cache-read corruptor flips exactly one byte on a copy,
// deterministically for a fixed seed, and leaves the original alone.
func TestCorrupt(t *testing.T) {
	orig := []byte(`{"version":1,"key":"ab","res":{"committed":5}}`)
	in := New(Config{Seed: 3, FlipByte: 1})
	got := in.Corrupt(append([]byte(nil), orig...))
	if bytes.Equal(got, orig) {
		t.Fatal("Corrupt at p=1 returned the bytes unchanged")
	}
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 || len(got) != len(orig) {
		t.Fatalf("Corrupt changed %d bytes (len %d->%d), want exactly 1", diff, len(orig), len(got))
	}
	in2 := New(Config{Seed: 3, FlipByte: 1})
	if !bytes.Equal(in2.Corrupt(append([]byte(nil), orig...)), got) {
		t.Fatal("identically seeded corruptors disagreed")
	}
	// The input slice itself must not be mutated in place.
	keep := append([]byte(nil), orig...)
	in.Corrupt(keep)
	if !bytes.Equal(keep, orig) {
		t.Fatal("Corrupt mutated its input")
	}
	// p=0 never corrupts.
	off := New(Config{Seed: 3})
	if !bytes.Equal(off.Corrupt(keep), orig) {
		t.Fatal("Corrupt with FlipByte=0 altered bytes")
	}
}
