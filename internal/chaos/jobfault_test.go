package chaos

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

func faultJobs(t *testing.T) []sweep.Job {
	t.Helper()
	spec := sweep.Quick()
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// nopExecutor records calls without simulating anything.
type nopExecutor struct{ calls int }

func (e *nopExecutor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	e.calls++
	return &core.Results{}, nil
}

// TestJobFaultClassifyDeterministic pins the injector's core contract: the
// fault assigned to a job is a pure function of (job, seed) — stable
// across calls, across injector instances, and insensitive to job order —
// so a poison job draws the same fault on every worker in a fleet.
func TestJobFaultClassifyDeterministic(t *testing.T) {
	jobs := faultJobs(t)
	cfg := JobFaults{Seed: 7, Panic: 0.2, Stall: 0.2, Alloc: 0.2}
	a, b := NewJobInjector(cfg), NewJobInjector(cfg)
	for _, j := range jobs {
		if got, want := a.Classify(j), b.Classify(j); got != want {
			t.Fatalf("job %s: instance disagreement %q vs %q", j, got, want)
		}
		if first, again := a.Classify(j), a.Classify(j); first != again {
			t.Fatalf("job %s: unstable classification %q vs %q", j, first, again)
		}
	}

	// A different seed must reshuffle at least one assignment, or seeds
	// would be dead config.
	other := NewJobInjector(JobFaults{Seed: 8, Panic: 0.2, Stall: 0.2, Alloc: 0.2})
	moved := false
	for _, j := range jobs {
		if a.Classify(j) != other.Classify(j) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("seed change did not move any assignment")
	}
}

// TestJobFaultPanicDeterministicMessage checks the panic class fires with
// a message derived only from the job name, so the error row a quarantined
// job produces is byte-stable across runs.
func TestJobFaultPanicDeterministicMessage(t *testing.T) {
	jobs := faultJobs(t)
	ji := NewJobInjector(JobFaults{Seed: 1, Panic: 1})
	exec := ji.WrapExecutor(&nopExecutor{})
	j := jobs[0]

	catch := func() (msg string) {
		defer func() { msg = fmt.Sprintf("%v", recover()) }()
		exec.Execute(context.Background(), 0, j)
		return ""
	}
	want := fmt.Sprintf("chaos: injected poison panic for job %s", j)
	if got := catch(); got != want {
		t.Fatalf("panic message %q, want %q", got, want)
	}
	if got := catch(); got != want {
		t.Fatalf("second panic message %q, want %q", got, want)
	}
	if st := ji.JobStats(); st.Panics != 2 || st.Passed != 0 {
		t.Fatalf("stats %+v, want 2 panics", st)
	}
	if !strings.Contains(want, j.Bench) {
		t.Fatalf("panic message %q does not name the bench", want)
	}
}

// TestJobFaultStallHonorsContext checks an injected stall aborts promptly
// on context cancellation instead of pinning a shutdown for StallFor.
func TestJobFaultStallHonorsContext(t *testing.T) {
	jobs := faultJobs(t)
	ji := NewJobInjector(JobFaults{Seed: 1, Stall: 1, StallFor: time.Minute})
	inner := &nopExecutor{}
	exec := ji.WrapExecutor(inner)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := exec.Execute(ctx, 0, jobs[0]); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stall ignored cancellation, took %s", d)
	}
	if st := ji.JobStats(); st.Stalls != 1 {
		t.Fatalf("stats %+v, want 1 stall", st)
	}
	if inner.calls != 1 {
		t.Fatalf("inner executor called %d times, want 1", inner.calls)
	}
}

// TestJobFaultCleanPassThrough checks a zero-probability injector is a
// transparent wrapper that only counts.
func TestJobFaultCleanPassThrough(t *testing.T) {
	jobs := faultJobs(t)
	ji := NewJobInjector(JobFaults{Seed: 3})
	inner := &nopExecutor{}
	exec := ji.WrapExecutor(inner)
	for i, j := range jobs {
		if _, err := exec.Execute(context.Background(), i, j); err != nil {
			t.Fatal(err)
		}
	}
	if st := ji.JobStats(); st.Passed != uint64(len(jobs)) || st.Panics+st.Stalls+st.Allocs != 0 {
		t.Fatalf("stats %+v, want %d clean passes", st, len(jobs))
	}
}
