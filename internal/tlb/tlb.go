// Package tlb implements the instruction and data translation lookaside
// buffers of the simulated CPU (64 entries each in the paper's Table I) and
// the page walker that refills them.
//
// As in the paper (Section IV-A), the walker issues its PTE reads through
// the data-cache path: the pipeline charges those reads against the D-cache
// hierarchy (and, under SafeSpec, their fills go to the shadow D-cache), so
// only the TLB arrays themselves need dedicated shadow structures.
package tlb

import (
	"fmt"

	"safespec/internal/mem"
	"safespec/internal/stats"
)

// Config describes one TLB.
type Config struct {
	// Name identifies the TLB in statistics output ("iTLB", "dTLB").
	Name string
	// Entries is the total number of entries.
	Entries int
	// Ways is the associativity. Entries must be divisible by Ways and the
	// resulting set count must be a power of two.
	Ways int
	// HitLatency is the lookup time in cycles (usually folded into the
	// cache access; kept explicit for the timing-channel experiments).
	HitLatency int
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %s: bad geometry %d/%d", c.Name, c.Entries, c.Ways)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// SkylakeITLB returns the paper's 64-entry iTLB configuration.
func SkylakeITLB() Config { return Config{Name: "iTLB", Entries: 64, Ways: 4, HitLatency: 1} }

// SkylakeDTLB returns the paper's 64-entry dTLB configuration.
func SkylakeDTLB() Config { return Config{Name: "dTLB", Entries: 64, Ways: 4, HitLatency: 1} }

// Stats counts TLB activity.
type Stats struct {
	Hits, Misses uint64
	// Walks counts page walks triggered by misses.
	Walks uint64
	// Fills counts entries installed.
	Fills uint64
	// Flushes counts entries removed explicitly.
	Flushes uint64
}

// MissRate returns Misses / (Hits+Misses).
func (s Stats) MissRate() float64 { return stats.Rate(s.Misses, s.Hits+s.Misses) }

type entry struct {
	valid bool
	vpage uint64
	frame uint64
	perm  mem.Perm
	lru   uint64
}

// TLB is one set-associative translation buffer keyed by virtual page.
type TLB struct {
	cfg      Config
	sets     [][]entry
	setMask  uint64
	lruClock uint64
	// Stats accumulates activity counters.
	Stats Stats
}

// New builds a TLB from cfg; it panics on invalid geometry.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]entry, cfg.Sets())
	backing := make([]entry, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &TLB{cfg: cfg, sets: sets, setMask: uint64(cfg.Sets() - 1)}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

func (t *TLB) index(va uint64) (set uint64, vpage uint64) {
	vpn := va >> mem.PageBits
	return vpn & t.setMask, vpn << mem.PageBits
}

// Lookup probes the TLB for va. On a hit it returns the cached translation.
func (t *TLB) Lookup(va uint64) (frame uint64, perm mem.Perm, hit bool) {
	set, vpage := t.index(va)
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if e.valid && e.vpage == vpage {
			t.lruClock++
			e.lru = t.lruClock
			t.Stats.Hits++
			return e.frame, e.perm, true
		}
	}
	t.Stats.Misses++
	return 0, 0, false
}

// Contains probes without updating LRU or statistics.
func (t *TLB) Contains(va uint64) bool {
	set, vpage := t.index(va)
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if e.valid && e.vpage == vpage {
			return true
		}
	}
	return false
}

// Fill installs a translation, evicting LRU if necessary.
func (t *TLB) Fill(va, frame uint64, perm mem.Perm) {
	set, vpage := t.index(va)
	t.lruClock++
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if e.valid && e.vpage == vpage {
			e.frame, e.perm, e.lru = frame, perm, t.lruClock
			return
		}
	}
	t.Stats.Fills++
	victim := 0
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < t.sets[set][victim].lru {
			victim = i
		}
	}
	t.sets[set][victim] = entry{valid: true, vpage: vpage, frame: frame, perm: perm, lru: t.lruClock}
}

// Invalidate removes the translation for va if present.
func (t *TLB) Invalidate(va uint64) bool {
	set, vpage := t.index(va)
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if e.valid && e.vpage == vpage {
			e.valid = false
			t.Stats.Flushes++
			return true
		}
	}
	return false
}

// Reset invalidates everything and clears statistics.
func (t *TLB) Reset() {
	for s := range t.sets {
		for i := range t.sets[s] {
			t.sets[s][i] = entry{}
		}
	}
	t.Stats = Stats{}
	t.lruClock = 0
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for s := range t.sets {
		for i := range t.sets[s] {
			if t.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// Walker performs page walks against architectural memory, reporting the
// PTE reads so the pipeline can charge them to the D-cache path.
type Walker struct {
	// Mem is the architectural memory whose page table is walked.
	Mem *mem.Memory
	// BaseLatency is the fixed walker overhead in cycles, on top of the
	// memory-system time of the PTE reads.
	BaseLatency int
	// Walks counts completed walks.
	Walks uint64
}

// Walk translates va, returning the translation (including the PTE
// addresses read, which the caller charges to the cache hierarchy).
func (w *Walker) Walk(va uint64) mem.Translation {
	w.Walks++
	return w.Mem.Walk(va)
}
