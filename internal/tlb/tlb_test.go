package tlb

import (
	"testing"
	"testing/quick"

	"safespec/internal/mem"
)

func small() Config {
	return Config{Name: "t", Entries: 8, Ways: 2, HitLatency: 1} // 4 sets
}

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "indiv", Entries: 7, Ways: 2},
		{Name: "nonpow2", Entries: 12, Ways: 2}, // 6 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s should be invalid", c.Name)
		}
	}
	if SkylakeITLB().Entries != 64 || SkylakeDTLB().Entries != 64 {
		t.Error("Skylake TLBs must have 64 entries (Table I)")
	}
}

func TestLookupFill(t *testing.T) {
	tl := New(small())
	if _, _, hit := tl.Lookup(0x1234); hit {
		t.Error("cold hit")
	}
	tl.Fill(0x1234, 0xAB000, mem.PermUser)
	frame, perm, hit := tl.Lookup(0x1567) // same page
	if !hit || frame != 0xAB000 || perm != mem.PermUser {
		t.Errorf("lookup = %#x %v %v", frame, perm, hit)
	}
	if _, _, hit := tl.Lookup(0x2000); hit {
		t.Error("different page hit")
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 2 {
		t.Errorf("stats = %+v", tl.Stats)
	}
}

func TestFillUpdatesExisting(t *testing.T) {
	tl := New(small())
	tl.Fill(0x1000, 0xA000, mem.PermUser)
	tl.Fill(0x1000, 0xB000, mem.PermKernel)
	frame, perm, hit := tl.Lookup(0x1000)
	if !hit || frame != 0xB000 || perm != mem.PermKernel {
		t.Errorf("updated entry = %#x %v", frame, perm)
	}
	if tl.Stats.Fills != 1 {
		t.Errorf("update counted as new fill: %+v", tl.Stats)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	tl := New(small()) // 4 sets × 2 ways; set = (va>>12) & 3
	// Three pages in set 0: 0x0000, 0x4000, 0x8000.
	tl.Fill(0x0000, 0x1000, mem.PermUser)
	tl.Fill(0x4000, 0x2000, mem.PermUser)
	tl.Lookup(0x0000) // touch
	tl.Fill(0x8000, 0x3000, mem.PermUser)
	if !tl.Contains(0x0000) || tl.Contains(0x4000) || !tl.Contains(0x8000) {
		t.Error("LRU eviction wrong")
	}
}

func TestInvalidateAndReset(t *testing.T) {
	tl := New(small())
	tl.Fill(0x5000, 0x9000, mem.PermUser)
	if !tl.Invalidate(0x5000) || tl.Invalidate(0x5000) {
		t.Error("invalidate semantics wrong")
	}
	tl.Fill(0x5000, 0x9000, mem.PermUser)
	tl.Reset()
	if tl.Occupancy() != 0 || tl.Stats.Fills != 0 {
		t.Error("reset incomplete")
	}
}

func TestWalker(t *testing.T) {
	m := mem.New()
	m.Map(0x7000, mem.PermUser)
	w := &Walker{Mem: m, BaseLatency: 5}
	tr := w.Walk(0x7abc)
	if tr.Fault != mem.FaultNone {
		t.Fatalf("walk fault: %v", tr.Fault)
	}
	if w.Walks != 1 {
		t.Errorf("walk count = %d", w.Walks)
	}
	if tr.Steps[0].PA == 0 || tr.Steps[1].PA == 0 {
		t.Error("walker must report both PTE reads")
	}
}

// Property: occupancy never exceeds Entries and a just-filled page is
// always present.
func TestOccupancyProperty(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(small())
		for _, p := range pages {
			va := uint64(p) << 12
			tl.Fill(va, uint64(p)<<12|0x100000, mem.PermUser)
			if !tl.Contains(va) {
				return false
			}
			if tl.Occupancy() > tl.Config().Entries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a hit always returns exactly what was last filled for the page.
func TestFillLookupAgreementProperty(t *testing.T) {
	f := func(page uint8, frame uint32) bool {
		tl := New(small())
		va := uint64(page) << 12
		fr := uint64(frame) << 12
		tl.Fill(va, fr, mem.PermKernel)
		got, perm, hit := tl.Lookup(va + 123)
		return hit && got == fr && perm == mem.PermKernel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
