package asm

import (
	"strings"
	"testing"

	"safespec/internal/isa"
)

func TestForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Jmp("end") // forward reference
	b.Jmp("start")
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 2 {
		t.Errorf("forward jump target = %d, want 2", p.Code[0].Target)
	}
	if p.Code[1].Target != 0 {
		t.Errorf("backward jump target = %d, want 0", p.Code[1].Target)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
}

func TestRedefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("expected redefined-label error, got %v", err)
	}
}

func TestUndefinedTrapHandler(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.SetTrapHandler("missing")
	if _, err := b.Build(); err == nil {
		t.Error("expected error for undefined trap handler")
	}
}

func TestTrapHandlerAndEntry(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("main")
	b.Nop()
	b.Label("trap")
	b.Halt()
	b.SetTrapHandler("trap")
	b.SetEntry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.TrapHandler != 2 {
		t.Errorf("trap handler = %d, want 2", p.TrapHandler)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
}

func TestNoTrapHandlerDefaults(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	p := b.MustBuild()
	if p.TrapHandler != -1 {
		t.Errorf("default trap handler = %d, want -1", p.TrapHandler)
	}
	if p.Entry != 0 {
		t.Errorf("default entry = %d, want 0", p.Entry)
	}
}

func TestMoviLabel(t *testing.T) {
	b := NewBuilder()
	b.MoviLabel(isa.T0, "target")
	b.Nop()
	b.Label("target")
	b.Halt()
	p := b.MustBuild()
	if p.Code[0].Imm != 2 {
		t.Errorf("MoviLabel imm = %d, want 2", p.Code[0].Imm)
	}
}

func TestDataLabel(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("fn")
	b.Halt()
	b.DataLabel(0x1000, "fn")
	p := b.MustBuild()
	if p.Data[0x1000] != 1 {
		t.Errorf("DataLabel value = %d, want 1", p.Data[0x1000])
	}
}

func TestDataLabelUndefined(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.DataLabel(0x1000, "ghost")
	if _, err := b.Build(); err == nil {
		t.Error("expected error for undefined data label")
	}
}

func TestDataAndRegions(t *testing.T) {
	b := NewBuilder()
	b.Data(0x100, 7)
	b.KernelData(0x200, 9)
	b.Region(0x3000, 8192, true)
	b.Halt()
	p := b.MustBuild()
	if p.Data[0x100] != 7 {
		t.Errorf("Data = %d", p.Data[0x100])
	}
	if p.KernelData[0x200] != 9 {
		t.Errorf("KernelData = %d", p.KernelData[0x200])
	}
	if len(p.Regions) != 1 || !p.Regions[0].Kernel || p.Regions[0].Size != 8192 {
		t.Errorf("Regions = %+v", p.Regions)
	}
}

func TestBuildIsolation(t *testing.T) {
	// Build must snapshot: later edits to the builder may not affect a
	// previously built program.
	b := NewBuilder()
	b.Data(0x10, 1)
	b.Halt()
	p1 := b.MustBuild()
	b.Data(0x10, 2)
	if p1.Data[0x10] != 1 {
		t.Error("Build did not copy the data map")
	}
}

func TestEmittersProduceExpectedOps(t *testing.T) {
	b := NewBuilder()
	b.Movi(isa.T0, 1)
	b.Add(isa.T1, isa.T0, isa.T0)
	b.Sub(isa.T1, isa.T1, isa.T0)
	b.Mul(isa.T2, isa.T1, isa.T0)
	b.Div(isa.T2, isa.T2, isa.T0)
	b.Rem(isa.T2, isa.T2, isa.T0)
	b.And(isa.T3, isa.T2, isa.T0)
	b.Or(isa.T3, isa.T3, isa.T0)
	b.Xor(isa.T3, isa.T3, isa.T0)
	b.Shl(isa.T4, isa.T3, isa.T0)
	b.Shr(isa.T4, isa.T4, isa.T0)
	b.Slt(isa.T5, isa.T4, isa.T0)
	b.Addi(isa.T0, isa.T0, 1)
	b.Andi(isa.T0, isa.T0, 3)
	b.Ori(isa.T0, isa.T0, 4)
	b.Xori(isa.T0, isa.T0, 5)
	b.Shli(isa.T0, isa.T0, 1)
	b.Shri(isa.T0, isa.T0, 1)
	b.Slti(isa.T0, isa.T0, 10)
	b.FAdd(isa.S0, isa.T0, isa.T1)
	b.FMul(isa.S0, isa.S0, isa.T1)
	b.FDiv(isa.S0, isa.S0, isa.T1)
	b.Load(isa.S1, isa.T0, 8)
	b.Store(isa.S1, isa.T0, 16)
	b.Clflush(isa.T0, 0)
	b.RdCycle(isa.S2)
	b.Fence()
	b.Nop()
	b.Nops(2)
	b.Jmpi(isa.T0, 0)
	b.Calli(isa.T0, 0)
	b.Ret()
	b.Halt()
	p := b.MustBuild()

	wantOps := []isa.Op{
		isa.OpMovi, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSlt,
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri,
		isa.OpSlti, isa.OpFAdd, isa.OpFMul, isa.OpFDiv, isa.OpLoad, isa.OpStore,
		isa.OpClflush, isa.OpRdCycle, isa.OpFence, isa.OpNop, isa.OpNop, isa.OpNop,
		isa.OpJmpi, isa.OpCalli, isa.OpRet, isa.OpHalt,
	}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", len(p.Code), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("instr %d: op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
}

func TestBranchEmitters(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Beq(isa.T0, isa.T1, "top")
	b.Bne(isa.T0, isa.T1, "top")
	b.Blt(isa.T0, isa.T1, "top")
	b.Bge(isa.T0, isa.T1, "top")
	b.Bltu(isa.T0, isa.T1, "top")
	b.Bgeu(isa.T0, isa.T1, "top")
	b.Call("top")
	b.Halt()
	p := b.MustBuild()
	for i := 0; i < 7; i++ {
		if p.Code[i].Target != 0 {
			t.Errorf("instr %d target = %d, want 0", i, p.Code[i].Target)
		}
	}
	if p.Code[6].Rd != isa.RA {
		t.Error("call must write ra")
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Movi(isa.T0, 5)
	b.Label("loop")
	b.Addi(isa.T0, isa.T0, -1)
	b.Bne(isa.T0, isa.Zero, "loop")
	b.Halt()
	p := b.MustBuild()
	dis := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "movi t0, 5", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestLen(t *testing.T) {
	b := NewBuilder()
	if b.Len() != 0 {
		t.Error("empty builder length != 0")
	}
	b.Nop()
	b.Nop()
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}
