package asm_test

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/isa"
)

// ExampleBuilder assembles a counted loop with forward and backward label
// references and prints its disassembly.
func ExampleBuilder() {
	b := asm.NewBuilder()
	b.Movi(isa.T0, 3)
	b.Label("loop")
	b.Addi(isa.T0, isa.T0, -1)
	b.Bne(isa.T0, isa.Zero, "loop")
	b.Halt()
	prog := b.MustBuild()
	fmt.Print(asm.Disassemble(prog))
	// Output:
	//     0:  movi t0, 3
	// loop:
	//     1:  addi t0, t0, -1
	//     2:  bne t0, zero, @1
	//     3:  halt
}

// ExampleBuilder_DataLabel builds a jump table in memory — the pattern the
// I-cache Spectre variant and the workload dispatchers use.
func ExampleBuilder_DataLabel() {
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.DataLabel(0x1000, "handler")
	b.Movi(isa.T0, 0x1000)
	b.Load(isa.T1, isa.T0, 0)
	b.Jmpi(isa.T1, 0)
	b.Label("handler")
	b.Halt()
	prog := b.MustBuild()
	fmt.Println(prog.Data[0x1000]) // the instruction index of "handler"
	// Output: 3
}
