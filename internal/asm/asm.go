// Package asm provides a small label-based program builder for the SafeSpec
// ISA. Workloads, attack proofs-of-concept and examples use it instead of
// hand-resolving branch targets.
//
// Usage:
//
//	b := asm.NewBuilder()
//	b.Movi(isa.T0, 0)
//	b.Label("loop")
//	b.Addi(isa.T0, isa.T0, 1)
//	b.Blt(isa.T0, isa.T1, "loop")
//	b.Halt()
//	prog, err := b.Build()
//
// Labels may be referenced before they are defined; Build resolves all
// references and reports any label that was referenced but never defined.
package asm

import (
	"fmt"
	"sort"

	"safespec/internal/isa"
)

// Builder accumulates instructions and label definitions.
type Builder struct {
	code    []isa.Instr
	labels  map[string]int
	fixups  []fixup
	data    map[uint64]int64
	kdata   map[uint64]int64
	dfixups []dataFixup
	regions []isa.MemRegion
	trap    string // label of trap handler, "" if none
	entry   string // label of entry point, "" means index 0
	// threadEntries holds per-hardware-thread entry labels ("" = program
	// entry) for SMT programs.
	threadEntries []string
	errs          []error
}

type fixup struct {
	instr int
	label string
}

type dataFixup struct {
	addr  uint64
	label string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		data:   make(map[uint64]int64),
		kdata:  make(map[uint64]int64),
	}
}

// Len returns the number of instructions emitted so far (the index the next
// instruction will occupy).
func (b *Builder) Len() int { return len(b.code) }

// Label defines name at the current position. Redefining a label is an error
// reported by Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: label %q redefined", name))
		return
	}
	b.labels[name] = len(b.code)
}

// SetTrapHandler declares the label that the trap vector points at.
func (b *Builder) SetTrapHandler(label string) { b.trap = label }

// SetEntry declares the label execution starts from (default: index 0).
func (b *Builder) SetEntry(label string) { b.entry = label }

// SetThreadEntry assigns hardware thread tid its own entry label (SMT
// programs: victim on thread 0, attacker on thread 1). Threads without an
// assigned label start at the program entry point.
func (b *Builder) SetThreadEntry(tid int, label string) {
	if tid < 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: negative thread id %d", tid))
		return
	}
	for len(b.threadEntries) <= tid {
		b.threadEntries = append(b.threadEntries, "")
	}
	b.threadEntries[tid] = label
}

// Data installs an initial 64-bit value at a user-accessible address.
func (b *Builder) Data(addr uint64, v int64) { b.data[addr] = v }

// KernelData installs an initial 64-bit value at a kernel-only address.
func (b *Builder) KernelData(addr uint64, v int64) { b.kdata[addr] = v }

// DataLabel installs the instruction index of label as a 64-bit value at a
// user-accessible address (for jump tables driving indirect calls).
func (b *Builder) DataLabel(addr uint64, label string) {
	b.dfixups = append(b.dfixups, dataFixup{addr: addr, label: label})
}

// Region declares a virtual address range the loader maps before running.
func (b *Builder) Region(base, size uint64, kernel bool) {
	b.regions = append(b.regions, isa.MemRegion{Base: base, Size: size, Kernel: kernel})
}

func (b *Builder) emit(in isa.Instr) {
	b.code = append(b.code, in)
}

func (b *Builder) emitTarget(in isa.Instr, label string) {
	in.Target = -1
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label})
	b.code = append(b.code, in)
}

// --- ALU ---

// Movi emits rd = imm.
func (b *Builder) Movi(rd isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpMovi, Rd: rd, Imm: imm})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (0 on divide-by-zero).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd = rs1 % rs2 (rs1 on modulo-by-zero).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpRem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd = rs1 >> rs2 (logical).
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpOri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpXori, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpShli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpShri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm) signed.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpSlti, Rd: rd, Rs1: rs1, Imm: imm})
}

// FAdd emits a 4-cycle floating-point add.
func (b *Builder) FAdd(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FMul emits a 5-cycle floating-point multiply.
func (b *Builder) FMul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FDiv emits an 18-cycle floating-point divide.
func (b *Builder) FDiv(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- Memory ---

// Load emits rd = mem[rs1+imm].
func (b *Builder) Load(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpLoad, Rd: rd, Rs1: rs1, Imm: imm})
}

// Store emits mem[rs1+imm] = rs2.
func (b *Builder) Store(rs2, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpStore, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Clflush emits a flush of the cache line containing rs1+imm.
func (b *Builder) Clflush(rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpClflush, Rs1: rs1, Imm: imm})
}

// --- Control flow ---

// Beq emits: if rs1 == rs2 goto label.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits: if rs1 != rs2 goto label.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt emits: if rs1 < rs2 (signed) goto label.
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge emits: if rs1 >= rs2 (signed) goto label.
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Bltu emits: if rs1 < rs2 (unsigned) goto label.
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBltu, Rs1: rs1, Rs2: rs2}, label)
}

// Bgeu emits: if rs1 >= rs2 (unsigned) goto label.
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpBgeu, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp emits an unconditional direct jump to label.
func (b *Builder) Jmp(label string) {
	b.emitTarget(isa.Instr{Op: isa.OpJmp}, label)
}

// Jmpi emits an indirect jump to the *instruction index* held in rs1+imm.
func (b *Builder) Jmpi(rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpJmpi, Rs1: rs1, Imm: imm})
}

// Call emits a direct call to label (writes the return index into ra).
func (b *Builder) Call(label string) {
	b.emitTarget(isa.Instr{Op: isa.OpCall, Rd: isa.RA}, label)
}

// Calli emits an indirect call to the instruction index in rs1+imm.
func (b *Builder) Calli(rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpCalli, Rd: isa.RA, Rs1: rs1, Imm: imm})
}

// Ret emits a return through ra.
func (b *Builder) Ret() { b.emit(isa.Instr{Op: isa.OpRet}) }

// --- Misc ---

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.OpNop}) }

// Nops emits n no-ops (useful for padding gadgets onto distinct I-cache lines).
func (b *Builder) Nops(n int) {
	for i := 0; i < n; i++ {
		b.Nop()
	}
}

// RdCycle emits rd = cycle counter (serializing).
func (b *Builder) RdCycle(rd isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpRdCycle, Rd: rd})
}

// Fence emits a pipeline drain.
func (b *Builder) Fence() { b.emit(isa.Instr{Op: isa.OpFence}) }

// Halt emits program termination.
func (b *Builder) Halt() { b.emit(isa.Instr{Op: isa.OpHalt}) }

// MoviLabel emits rd = instruction index of label (resolved at Build time),
// for constructing indirect-branch targets.
func (b *Builder) MoviLabel(rd isa.Reg, label string) {
	b.emitTarget(isa.Instr{Op: isa.OpMovi, Rd: rd}, label)
}

// Build resolves labels and returns the finished program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	code := make([]isa.Instr, len(b.code))
	copy(code, b.code)
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		if code[f.instr].Op == isa.OpMovi {
			code[f.instr].Imm = int64(idx)
		} else {
			code[f.instr].Target = idx
		}
	}
	data := copyMap(b.data)
	for _, f := range b.dfixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined data label %q", f.label)
		}
		data[f.addr] = int64(idx)
	}
	prog := &isa.Program{
		Code:        code,
		TrapHandler: -1,
		Data:        data,
		KernelData:  copyMap(b.kdata),
		Regions:     append([]isa.MemRegion(nil), b.regions...),
		Symbols:     make(map[string]int, len(b.labels)),
	}
	for name, idx := range b.labels {
		prog.Symbols[name] = idx
	}
	if b.trap != "" {
		idx, ok := b.labels[b.trap]
		if !ok {
			return nil, fmt.Errorf("asm: undefined trap handler label %q", b.trap)
		}
		prog.TrapHandler = idx
	}
	if b.entry != "" {
		idx, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry label %q", b.entry)
		}
		prog.Entry = idx
	}
	if len(b.threadEntries) > 0 {
		prog.ThreadEntries = make([]int, len(b.threadEntries))
		for tid, label := range b.threadEntries {
			if label == "" {
				prog.ThreadEntries[tid] = prog.Entry
				continue
			}
			idx, ok := b.labels[label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined thread %d entry label %q", tid, label)
			}
			prog.ThreadEntries[tid] = idx
		}
	}
	return prog, nil
}

// MustBuild is Build that panics on error; intended for static programs in
// workloads and tests where a label error is a programming bug.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program with labels, one instruction per line.
func Disassemble(p *isa.Program) string {
	byIdx := make(map[int][]string)
	for name, idx := range p.Symbols {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var out []byte
	for i, in := range p.Code {
		names := byIdx[i]
		sort.Strings(names)
		for _, n := range names {
			out = append(out, (n + ":\n")...)
		}
		out = append(out, fmt.Sprintf("%5d:  %s\n", i, in)...)
	}
	return string(out)
}

func copyMap(m map[uint64]int64) map[uint64]int64 {
	out := make(map[uint64]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
