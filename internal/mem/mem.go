// Package mem implements the architectural memory of the simulator: a
// byte-addressable, paged virtual address space with user/kernel permission
// bits and a software-walkable page table.
//
// The simulator splits semantics from timing: architectural values live
// here, while caches, TLBs and the SafeSpec shadow structures (packages
// cache, tlb, shadow) model only presence and replacement. That split is
// what makes "squash the shadow state in place" a pure timing operation, as
// in the paper.
//
// The page table is a real in-memory radix structure whose entries occupy
// physical addresses, so the page walker performs genuine memory reads that
// travel through the data-cache path — the property the paper relies on when
// arguing that protecting the D-cache also protects the page-walk traffic.
package mem

import (
	"errors"
	"fmt"
)

// PageBits is log2 of the page size. 4 KiB pages, as on x86-64.
const PageBits = 12

// PageSize is the page size in bytes.
const PageSize = 1 << PageBits

// PageMask extracts the offset within a page.
const PageMask = PageSize - 1

// Perm describes page permissions.
type Perm uint8

const (
	// PermUser marks the page readable from user mode.
	PermUser Perm = 1 << iota
	// PermKernel marks the page readable only from kernel mode. A user-mode
	// access to such a page raises a permission fault at commit time.
	PermKernel
)

// Fault enumerates architectural faults.
type Fault uint8

const (
	// FaultNone means the access was legal.
	FaultNone Fault = iota
	// FaultPerm is a permission violation (user access to a kernel page).
	FaultPerm
	// FaultUnmapped is an access to an unmapped virtual page.
	FaultUnmapped
)

// String returns a short name for the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPerm:
		return "perm"
	case FaultUnmapped:
		return "unmapped"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// ErrUnmapped is returned by direct physical accesses to absent frames.
var ErrUnmapped = errors.New("mem: unmapped address")

// PTE is a page-table entry as stored in simulated physical memory.
// Layout: bit 0 = valid, bit 1 = user, bit 2 = kernel, bits 12+ = frame base.
type PTE uint64

// pteValid is the valid bit of a PTE.
const pteValid PTE = 1

// Valid reports whether the entry maps a frame.
func (p PTE) Valid() bool { return p&pteValid != 0 }

// Perm returns the permission bits of the entry.
func (p PTE) Perm() Perm { return Perm((p >> 1) & 3) }

// Frame returns the physical frame base address.
func (p PTE) Frame() uint64 { return uint64(p) &^ uint64(PageMask) }

// MakePTE builds a PTE for the given frame and permissions.
func MakePTE(frame uint64, perm Perm) PTE {
	return PTE(frame&^uint64(PageMask)) | PTE(perm)<<1 | pteValid
}

// Walk levels: a 2-level table covering 36 bits of VA
// (12 offset + 12 + 12). Each level is a 4096-entry array of 8-byte PTEs,
// i.e. exactly one 32 KiB region... to keep walks short (2 memory reads),
// matching the cost profile that matters for the TLB experiments.
const (
	walkLevels  = 2
	idxBits     = 12
	idxMask     = (1 << idxBits) - 1
	entriesPerL = 1 << idxBits
)

// regionBytes is the bump-allocator granularity: page-table levels are
// 4096 entries * 8 B, and every allocated region is addressed at this
// stride so a physical address maps to its region by pure arithmetic.
const regionBytes = entriesPerL * 8

// writeRec is one journaled physical write (see StartJournal).
type writeRec struct {
	pa  uint64
	old int64
}

// Memory is the simulated physical memory plus the page-table machinery.
type Memory struct {
	// frames holds the allocated regions in bump order: region i covers
	// physical addresses [physBase+i*regionBytes, +len(frames[i])*8).
	// Page-table regions are fully populated (entriesPerL words); data
	// regions only back their first page, which is all a 4 KiB-page
	// translation can reach. Indexing by arithmetic instead of a map keeps
	// ReadPhys/WritePhys — the hottest memory-system calls (every PTE read
	// of every page walk lands here) — map-free.
	frames [][]int64
	// rootPA is the physical base of the level-1 page table.
	rootPA uint64
	// nextFreePA is a bump allocator for frames (page tables and data).
	nextFreePA uint64

	// journal, when enabled, records the old value of every physical write
	// so Rollback can restore the post-load image exactly. Sweep executors
	// use it to reuse one loaded Memory across runs of the same program
	// instead of rebuilding page tables and data frames per job.
	journal    []writeRec
	journaling bool
	// words totals the allocated backing words across all frames.
	words int
}

// physBase is where the bump allocator starts handing out frames.
// Virtual addresses used by programs are far below this, avoiding collisions
// between PA-space and the VA values that identify lines in the caches.
const physBase = 1 << 40

// New returns an empty memory with an allocated (empty) root page table.
func New() *Memory {
	m := &Memory{nextFreePA: physBase}
	m.rootPA = m.allocFrame(entriesPerL)
	return m
}

// allocFrame reserves a zeroed physical region of the given word count and
// returns its base address. The region occupies a full regionBytes slot of
// the PA space regardless of words.
func (m *Memory) allocFrame(words int) uint64 {
	base := m.nextFreePA
	m.nextFreePA += regionBytes
	m.frames = append(m.frames, make([]int64, words))
	m.words += words
	return base
}

// Words returns the total allocated backing words — a proxy for the cost
// of rebuilding this memory from scratch, which callers weigh against the
// journal length when deciding between Rollback and a rebuild.
func (m *Memory) Words() int { return m.words }

// JournalLen returns the number of journaled writes awaiting Rollback.
func (m *Memory) JournalLen() int { return len(m.journal) }

// RootPA returns the physical address of the root page table, which the
// page walker dereferences.
func (m *Memory) RootPA() uint64 { return m.rootPA }

// frameOf locates the allocated region containing pa.
func (m *Memory) frameOf(pa uint64) ([]int64, uint64, bool) {
	if pa < physBase {
		return nil, 0, false
	}
	slot := (pa - physBase) / regionBytes
	if slot >= uint64(len(m.frames)) {
		return nil, 0, false
	}
	return m.frames[slot], physBase + slot*regionBytes, true
}

// ReadPhys reads the 64-bit word at physical address pa (8-byte aligned by
// truncation).
func (m *Memory) ReadPhys(pa uint64) (int64, error) {
	f, base, ok := m.frameOf(pa)
	if !ok {
		return 0, ErrUnmapped
	}
	i := (pa - base) / 8
	if i >= uint64(len(f)) {
		return 0, ErrUnmapped
	}
	return f[i], nil
}

// WritePhys writes the 64-bit word at physical address pa.
func (m *Memory) WritePhys(pa uint64, v int64) error {
	f, base, ok := m.frameOf(pa)
	if !ok {
		return ErrUnmapped
	}
	i := (pa - base) / 8
	if i >= uint64(len(f)) {
		return ErrUnmapped
	}
	if m.journaling {
		m.journal = append(m.journal, writeRec{pa: pa, old: f[i]})
	}
	f[i] = v
	return nil
}

// StartJournal begins recording physical writes so Rollback can undo them.
// Call it once the program image is fully loaded; mapping new pages while
// journaling is not supported (Rollback restores content, not layout).
func (m *Memory) StartJournal() {
	m.journaling = true
	m.journal = m.journal[:0]
}

// Rollback undoes every journaled write in reverse order, restoring memory
// to its content at the matching StartJournal, and starts a fresh journal.
func (m *Memory) Rollback() {
	for i := len(m.journal) - 1; i >= 0; i-- {
		rec := m.journal[i]
		f, base, _ := m.frameOf(rec.pa)
		f[(rec.pa-base)/8] = rec.old
	}
	m.journal = m.journal[:0]
}

// Map establishes a mapping for the virtual page containing va with the given
// permissions, allocating a data frame and any missing page-table levels.
// Remapping an already-mapped page updates its permissions in place.
func (m *Memory) Map(va uint64, perm Perm) {
	l1 := (va >> (PageBits + idxBits)) & idxMask
	l2 := (va >> PageBits) & idxMask

	l1pa := m.rootPA + l1*8
	l1e, _ := m.ReadPhys(l1pa)
	l1pte := PTE(l1e)
	if !l1pte.Valid() {
		tbl := m.allocFrame(entriesPerL)
		l1pte = MakePTE(tbl, PermUser|PermKernel)
		_ = m.WritePhys(l1pa, int64(l1pte))
	}
	l2pa := l1pte.Frame() + l2*8
	l2e, _ := m.ReadPhys(l2pa)
	l2pte := PTE(l2e)
	if !l2pte.Valid() {
		// A data frame backs exactly one 4 KiB page: no translation can
		// reach beyond it, so allocating the full region would only burn
		// allocator time and cache footprint per mapped page.
		frame := m.allocFrame(PageSize / 8)
		l2pte = MakePTE(frame, perm)
	} else {
		l2pte = MakePTE(l2pte.Frame(), perm)
	}
	_ = m.WritePhys(l2pa, int64(l2pte))
}

// WalkStep describes one page-walk memory reference (a PTE read), which the
// pipeline routes through the data-cache path.
type WalkStep struct {
	// PA is the physical address of the PTE that was read.
	PA uint64
}

// Translation is the result of a page walk.
type Translation struct {
	// VPage is the virtual page base address.
	VPage uint64
	// Frame is the physical frame base (0 if the walk faulted).
	Frame uint64
	// Perm holds the mapped permissions.
	Perm Perm
	// Fault is FaultNone on success.
	Fault Fault
	// Steps lists the PTE reads performed, oldest first.
	Steps [walkLevels]WalkStep
}

// Walk translates va by walking the page table, returning the translation
// and the list of PTE addresses touched. It never allocates.
func (m *Memory) Walk(va uint64) Translation {
	tr := Translation{VPage: va &^ uint64(PageMask)}
	l1 := (va >> (PageBits + idxBits)) & idxMask
	l2 := (va >> PageBits) & idxMask

	l1pa := m.rootPA + l1*8
	tr.Steps[0] = WalkStep{PA: l1pa}
	l1e, err := m.ReadPhys(l1pa)
	l1pte := PTE(l1e)
	if err != nil || !l1pte.Valid() {
		tr.Fault = FaultUnmapped
		return tr
	}
	l2pa := l1pte.Frame() + l2*8
	tr.Steps[1] = WalkStep{PA: l2pa}
	l2e, err := m.ReadPhys(l2pa)
	l2pte := PTE(l2e)
	if err != nil || !l2pte.Valid() {
		tr.Fault = FaultUnmapped
		return tr
	}
	tr.Frame = l2pte.Frame()
	tr.Perm = l2pte.Perm()
	return tr
}

// CheckAccess returns the fault (if any) for a user-mode access with the
// given translation.
func CheckAccess(tr Translation, kernelMode bool) Fault {
	if tr.Fault != FaultNone {
		return tr.Fault
	}
	if !kernelMode && tr.Perm&PermUser == 0 {
		return FaultPerm
	}
	return FaultNone
}

// Read returns the 64-bit value at virtual address va (8-byte aligned by
// truncation), along with any fault. On fault the data value is still
// returned when the page is mapped — this models the Meltdown-vulnerable
// behaviour in which faulting loads forward data to speculative dependents.
func (m *Memory) Read(va uint64, kernelMode bool) (int64, Fault) {
	tr := m.Walk(va)
	fault := CheckAccess(tr, kernelMode)
	if tr.Fault != FaultNone {
		return 0, fault
	}
	pa := tr.Frame + (va & PageMask)
	v, err := m.ReadPhys(pa)
	if err != nil {
		return 0, FaultUnmapped
	}
	return v, fault
}

// Write stores v at virtual address va. Writes to kernel pages from user
// mode fault and do not modify memory (stores are only performed at commit,
// where the fault is raised first).
func (m *Memory) Write(va uint64, v int64, kernelMode bool) Fault {
	tr := m.Walk(va)
	fault := CheckAccess(tr, kernelMode)
	if fault != FaultNone {
		return fault
	}
	pa := tr.Frame + (va & PageMask)
	if err := m.WritePhys(pa, v); err != nil {
		return FaultUnmapped
	}
	return FaultNone
}

// EnsureMapped maps the page containing va as user-accessible if it is not
// already mapped. It is a convenience used by program loaders.
func (m *Memory) EnsureMapped(va uint64, perm Perm) {
	tr := m.Walk(va)
	if tr.Fault != FaultNone {
		m.Map(va, perm)
	}
}

// LoadImage installs the program's data segments: Data words into user pages
// and KernelData words into kernel-only pages.
func (m *Memory) LoadImage(data, kernelData map[uint64]int64) {
	for va, v := range data {
		m.EnsureMapped(va, PermUser|PermKernel)
		if f := m.Write(va, v, true); f != FaultNone {
			panic(fmt.Sprintf("mem: loading user data at %#x: %v", va, f))
		}
	}
	for va, v := range kernelData {
		m.Map(va, PermKernel)
		if f := m.Write(va, v, true); f != FaultNone {
			panic(fmt.Sprintf("mem: loading kernel data at %#x: %v", va, f))
		}
	}
}
