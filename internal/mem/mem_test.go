package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := New()
	m.Map(0x1000, PermUser|PermKernel)
	if f := m.Write(0x1008, 42, false); f != FaultNone {
		t.Fatalf("write fault: %v", f)
	}
	v, f := m.Read(0x1008, false)
	if f != FaultNone || v != 42 {
		t.Fatalf("read = %d, %v", v, f)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, f := m.Read(0xdead000, false); f != FaultUnmapped {
		t.Errorf("read fault = %v, want unmapped", f)
	}
	if f := m.Write(0xdead000, 1, false); f != FaultUnmapped {
		t.Errorf("write fault = %v, want unmapped", f)
	}
}

func TestKernelPermission(t *testing.T) {
	m := New()
	m.Map(0x2000, PermKernel)
	if f := m.Write(0x2000, 7, true); f != FaultNone {
		t.Fatalf("kernel write fault: %v", f)
	}
	// User read faults but — Meltdown semantics — the data is returned
	// when the page is mapped.
	v, f := m.Read(0x2000, false)
	if f != FaultPerm {
		t.Errorf("user read fault = %v, want perm", f)
	}
	if v != 7 {
		t.Errorf("faulting read value = %d, want 7 (forwarded)", v)
	}
	// Kernel-mode read is clean.
	if v, f := m.Read(0x2000, true); f != FaultNone || v != 7 {
		t.Errorf("kernel read = %d, %v", v, f)
	}
	// User write must not modify.
	if f := m.Write(0x2000, 9, false); f != FaultPerm {
		t.Errorf("user write fault = %v", f)
	}
	if v, _ := m.Read(0x2000, true); v != 7 {
		t.Error("faulting write modified memory")
	}
}

func TestRemapUpdatesPermissions(t *testing.T) {
	m := New()
	m.Map(0x3000, PermKernel)
	m.Write(0x3000, 5, true)
	m.Map(0x3000, PermUser|PermKernel)
	v, f := m.Read(0x3000, false)
	if f != FaultNone || v != 5 {
		t.Errorf("after remap: %d, %v (data must survive a permission change)", v, f)
	}
}

func TestWalkSteps(t *testing.T) {
	m := New()
	m.Map(0x5000, PermUser)
	tr := m.Walk(0x5123)
	if tr.Fault != FaultNone {
		t.Fatalf("walk fault: %v", tr.Fault)
	}
	if tr.VPage != 0x5000 {
		t.Errorf("VPage = %#x", tr.VPage)
	}
	// Both PTE reads must land in allocated physical frames.
	for i, s := range tr.Steps {
		if s.PA == 0 {
			t.Fatalf("step %d has zero PA", i)
		}
		if _, err := m.ReadPhys(s.PA); err != nil {
			t.Errorf("step %d PTE at %#x unreadable: %v", i, s.PA, err)
		}
	}
	// The first step must read the root table.
	if tr.Steps[0].PA < m.RootPA() || tr.Steps[0].PA >= m.RootPA()+entriesPerL*8 {
		t.Errorf("step 0 PA %#x not in root table at %#x", tr.Steps[0].PA, m.RootPA())
	}
}

func TestWalkUnmapped(t *testing.T) {
	m := New()
	tr := m.Walk(0x7000)
	if tr.Fault != FaultUnmapped {
		t.Errorf("walk of unmapped page: fault = %v", tr.Fault)
	}
}

func TestAdjacentPagesShareLeafPTELine(t *testing.T) {
	// The Meltdown PoC warms a kernel page's PTE line by touching the
	// neighbouring user page: their leaf PTEs must be 8 bytes apart.
	m := New()
	m.Map(0x10000, PermUser)
	m.Map(0x11000, PermKernel)
	a := m.Walk(0x10000)
	b := m.Walk(0x11000)
	if a.Steps[1].PA+8 != b.Steps[1].PA {
		t.Errorf("leaf PTEs not adjacent: %#x vs %#x", a.Steps[1].PA, b.Steps[1].PA)
	}
}

func TestPTEEncoding(t *testing.T) {
	p := MakePTE(0xABC000, PermUser|PermKernel)
	if !p.Valid() {
		t.Error("PTE not valid")
	}
	if p.Frame() != 0xABC000 {
		t.Errorf("frame = %#x", p.Frame())
	}
	if p.Perm() != PermUser|PermKernel {
		t.Errorf("perm = %v", p.Perm())
	}
	if PTE(0).Valid() {
		t.Error("zero PTE must be invalid")
	}
}

func TestFaultString(t *testing.T) {
	if FaultNone.String() != "none" || FaultPerm.String() != "perm" || FaultUnmapped.String() != "unmapped" {
		t.Error("fault names wrong")
	}
}

func TestCheckAccess(t *testing.T) {
	tr := Translation{Perm: PermKernel}
	if CheckAccess(tr, false) != FaultPerm {
		t.Error("user access to kernel page should fault")
	}
	if CheckAccess(tr, true) != FaultNone {
		t.Error("kernel access to kernel page should pass")
	}
	tr.Fault = FaultUnmapped
	if CheckAccess(tr, true) != FaultUnmapped {
		t.Error("unmapped propagates")
	}
}

func TestLoadImage(t *testing.T) {
	m := New()
	m.LoadImage(
		map[uint64]int64{0x100: 1, 0x2108: 2},
		map[uint64]int64{0x9000: 3},
	)
	if v, f := m.Read(0x100, false); v != 1 || f != FaultNone {
		t.Errorf("user data: %d %v", v, f)
	}
	if v, f := m.Read(0x2108, false); v != 2 || f != FaultNone {
		t.Errorf("user data 2: %d %v", v, f)
	}
	if _, f := m.Read(0x9000, false); f != FaultPerm {
		t.Errorf("kernel data readable from user mode: %v", f)
	}
	if v, _ := m.Read(0x9000, true); v != 3 {
		t.Error("kernel data wrong")
	}
}

func TestEnsureMapped(t *testing.T) {
	m := New()
	m.EnsureMapped(0x4000, PermUser|PermKernel)
	m.Write(0x4000, 11, false)
	// Second call must not reallocate (data preserved).
	m.EnsureMapped(0x4000, PermUser|PermKernel)
	if v, _ := m.Read(0x4000, false); v != 11 {
		t.Error("EnsureMapped reallocated an existing page")
	}
}

// Property: for any set of writes to mapped user pages, reads return the
// last value written per 8-byte word.
func TestReadWriteConsistencyProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		shadow := make(map[uint64]int64)
		for i := 0; i < 8; i++ {
			m.Map(uint64(i)*PageSize, PermUser|PermKernel)
		}
		for i := 0; i < int(nOps); i++ {
			addr := (uint64(rng.Intn(8*PageSize)) / 8) * 8
			if rng.Intn(2) == 0 {
				v := rng.Int63()
				if m.Write(addr, v, false) != FaultNone {
					return false
				}
				shadow[addr] = v
			} else {
				v, fault := m.Read(addr, false)
				if fault != FaultNone || v != shadow[addr] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: walking any mapped address yields a frame that round-trips
// physical reads and writes.
func TestWalkFrameProperty(t *testing.T) {
	f := func(pageIdx uint8, off uint16, v int64) bool {
		m := New()
		va := uint64(pageIdx) * PageSize
		m.Map(va, PermUser)
		tr := m.Walk(va + uint64(off)%PageSize)
		if tr.Fault != FaultNone {
			return false
		}
		pa := tr.Frame + (uint64(off)%PageSize)/8*8
		if err := m.WritePhys(pa, v); err != nil {
			return false
		}
		got, err := m.ReadPhys(pa)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
