package mem

import "testing"

// TestJournalRollback: rolling back restores every word written since
// StartJournal — including multiply-overwritten ones — so a journaled
// memory can stand in for a freshly loaded image across simulator reuses.
func TestJournalRollback(t *testing.T) {
	m := New()
	m.Map(0x1000, PermUser|PermKernel)
	m.Map(0x2000, PermUser|PermKernel)
	if f := m.Write(0x1000, 11, true); f != FaultNone {
		t.Fatal(f)
	}
	if f := m.Write(0x2008, 22, true); f != FaultNone {
		t.Fatal(f)
	}

	m.StartJournal()
	for i, w := range []struct {
		va uint64
		v  int64
	}{{0x1000, 100}, {0x1000, 200}, {0x2008, 300}, {0x2010, 400}} {
		if f := m.Write(w.va, w.v, true); f != FaultNone {
			t.Fatalf("write %d: %v", i, f)
		}
	}
	m.Rollback()

	for _, want := range []struct {
		va uint64
		v  int64
	}{{0x1000, 11}, {0x2008, 22}, {0x2010, 0}} {
		got, f := m.Read(want.va, true)
		if f != FaultNone || got != want.v {
			t.Errorf("after rollback mem[%#x] = %d (fault %v), want %d", want.va, got, f, want.v)
		}
	}

	// The journal restarts empty: new writes after a rollback are undone by
	// the next rollback, and only those.
	if f := m.Write(0x1000, 777, true); f != FaultNone {
		t.Fatal(f)
	}
	m.Rollback()
	if got, _ := m.Read(0x1000, true); got != 11 {
		t.Errorf("second rollback left mem[0x1000] = %d, want 11", got)
	}
}

// TestJournalDisabledByDefault: a fresh memory records nothing, so Rollback
// is a no-op rather than an undo of the image load.
func TestJournalDisabledByDefault(t *testing.T) {
	m := New()
	m.Map(0x1000, PermUser|PermKernel)
	if f := m.Write(0x1000, 5, true); f != FaultNone {
		t.Fatal(f)
	}
	m.Rollback()
	if got, _ := m.Read(0x1000, true); got != 5 {
		t.Errorf("rollback without journaling undid a write: got %d, want 5", got)
	}
}
