module safespec

go 1.24
