package safespec_test

import (
	"context"
	"fmt"
	"testing"

	"safespec/internal/core"
	"safespec/internal/shadow"
	"safespec/internal/sweep"
	"safespec/internal/workloads"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// commit policy (WFB vs WFC), the shadow sizing, and the full-structure
// behaviour. Run with `go test -bench=Ablation -benchmem`. The sizing and
// full-policy sweeps dispatch their custom-config jobs through the
// internal/sweep engine.

const ablationInstrs = 20_000

// runJob executes one custom-config job on the sweep engine and returns its
// IPC. Each call includes program generation and pool setup, so ns/op here
// measures the full job path, not the bare simulation loop; the reported
// IPC metric is what the ablation compares.
func runJob(b *testing.B, job sweep.Job) float64 {
	b.Helper()
	results, err := sweep.Run(context.Background(), []sweep.Job{job}, sweep.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if results[0].Err != nil {
		b.Fatal(results[0].Err)
	}
	return results[0].Res.IPC()
}

// BenchmarkAblationCommitPolicy compares the two SafeSpec policies on a
// branchy kernel: the paper finds "the benefit from doing WFB is small"
// (Section IV-B); the metric here is the WFB:WFC IPC ratio.
func BenchmarkAblationCommitPolicy(b *testing.B) {
	w, _ := workloads.ByName("gcc")
	prog := w.Build()
	var ratio float64
	for i := 0; i < b.N; i++ {
		wfc := core.Run(core.WFC().WithLimits(ablationInstrs, 0), prog)
		wfb := core.Run(core.WFB().WithLimits(ablationInstrs, 0), prog)
		if wfc.IPC() > 0 {
			ratio = wfb.IPC() / wfc.IPC()
		}
	}
	b.ReportMetric(ratio, "wfb/wfc-IPC")
}

// BenchmarkAblationShadowSizing sweeps the shadow d-cache size under the
// Drop policy: the performance knee shows how much capacity the workloads
// actually need, motivating the Figures 6-9 sizing study.
func BenchmarkAblationShadowSizing(b *testing.B) {
	for _, size := range []int{2, 4, 8, 16, 32, 72} {
		job := sweep.Job{
			Bench: "blender",
			Mode:  fmt.Sprintf("wfc-drop-%d", size),
			Config: core.WFC().WithShadowPolicy(
				shadow.Policy{Name: "shadow-dcache", Entries: size, WhenFull: shadow.Drop},
				shadow.Policy{Name: "shadow-icache", Entries: 224},
				shadow.Policy{Name: "shadow-dtlb", Entries: 72},
				shadow.Policy{Name: "shadow-itlb", Entries: 224},
			).WithLimits(ablationInstrs, 0),
		}
		b.Run(fmt.Sprintf("entries-%d", size), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				ipc = runJob(b, job)
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationFullPolicy compares Block vs Drop vs Replace on an
// under-provisioned shadow d-cache: all three are functionally correct
// (architectural results are unchanged) but trade stall time against lost
// fills — and all three leak transiently (Section V), which is why the
// Secure sizing exists.
func BenchmarkAblationFullPolicy(b *testing.B) {
	for _, tc := range []struct {
		name string
		of   shadow.OnFull
	}{
		{"Block", shadow.Block},
		{"Drop", shadow.Drop},
		{"Replace", shadow.Replace},
	} {
		job := sweep.Job{
			Bench: "xz",
			Mode:  "wfc-full-" + tc.name,
			Config: core.WFC().WithShadowPolicy(
				shadow.Policy{Name: "shadow-dcache", Entries: 4, WhenFull: tc.of},
				shadow.Policy{Name: "shadow-icache", Entries: 224},
				shadow.Policy{Name: "shadow-dtlb", Entries: 72},
				shadow.Policy{Name: "shadow-itlb", Entries: 224},
			).WithLimits(ablationInstrs, 0),
		}
		b.Run(tc.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				ipc = runJob(b, job)
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationDetectorOverhead measures the simulation-side cost of
// the Section VII anomaly detector (it should be negligible).
func BenchmarkAblationDetectorOverhead(b *testing.B) {
	w, _ := workloads.ByName("x264")
	prog := w.Build()
	for _, det := range []bool{false, true} {
		name := "off"
		if det {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.WFC().WithLimits(ablationInstrs, 0)
				cfg.Pipeline.DetectAnomalies = det
				core.Run(cfg, prog)
			}
		})
	}
}

// BenchmarkAblationMeltdownSemantics compares Meltdown-vulnerable
// (FaultsReturnData=true, Intel-like) against fault-zeroing hardware: the
// performance must be identical (the switch only affects forwarded values,
// not timing), pinning down that WFC's Meltdown protection is free.
func BenchmarkAblationMeltdownSemantics(b *testing.B) {
	w, _ := workloads.ByName("perlbench")
	prog := w.Build()
	var dIPC float64
	for i := 0; i < b.N; i++ {
		vuln := core.WFC().WithLimits(ablationInstrs, 0)
		safe := core.WFC().WithLimits(ablationInstrs, 0)
		safe.Pipeline.FaultsReturnData = false
		rv := core.Run(vuln, prog)
		rs := core.Run(safe, prog)
		dIPC = rv.IPC() - rs.IPC()
	}
	b.ReportMetric(dIPC, "IPC-delta")
}
