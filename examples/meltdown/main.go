// Meltdown end-to-end: the fault-deferred kernel read. This example shows
// the one policy split in the paper's Table III — wait-for-branch stops
// Spectre but NOT Meltdown, because the faulting load depends on no branch;
// only wait-for-commit keeps its side effects speculative until the fault
// annuls them.
//
//	go run ./examples/meltdown
package main

import (
	"fmt"

	"safespec/internal/attacks"
	"safespec/internal/core"
)

func main() {
	attack := attacks.Meltdown()
	fmt.Printf("Meltdown: secret %d planted in kernel-only memory\n\n", attack.Secret)

	for _, m := range []struct {
		name string
		cfg  core.Config
		note string
	}{
		{"baseline", core.Baseline(), "speculative fills go straight to the committed caches"},
		{"safespec-wfb", core.WFB(), "no branch to wait for -> shadow state moves at issue"},
		{"safespec-wfc", core.WFC(), "fault at commit annuls the shadow state"},
	} {
		out, err := attacks.Execute(attack, m.cfg)
		if err != nil {
			panic(err)
		}
		verdict := "closed"
		if out.Leaked {
			verdict = fmt.Sprintf("LEAKED secret=%d", out.Recovered)
		}
		fmt.Printf("%-14s %-22s (%s)\n", m.name, verdict, m.note)
	}

	fmt.Println("\nThis reproduces Table III: Meltdown is stopped by WFC only.")
}
