// Spectre end-to-end: run the variant-1 bounds-check-bypass proof of
// concept against the unprotected core and against both SafeSpec policies,
// showing the Flush+Reload probe timings the attacker sees.
//
//	go run ./examples/spectre
package main

import (
	"fmt"

	"safespec/internal/attacks"
	"safespec/internal/core"
)

func main() {
	attack := attacks.SpectreV1()
	fmt.Printf("Spectre V1: planted secret = %d\n\n", attack.Secret)

	for _, m := range []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Baseline()},
		{"safespec-wfb", core.WFB()},
		{"safespec-wfc", core.WFC()},
	} {
		out, err := attacks.Execute(attack, m.cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n", m.name)
		fmt.Printf("  probe timings (cycles per candidate value):\n    ")
		for i, t := range out.Times {
			fmt.Printf("%d:%-5d", i, t)
			if i%8 == 7 {
				fmt.Printf("\n    ")
			}
		}
		fmt.Println()
		if out.Leaked {
			fmt.Printf("  LEAKED: candidate %d is uniquely fast -> attacker recovers the secret\n\n", out.Recovered)
		} else {
			fmt.Printf("  closed: no candidate stands out (recovered=%d)\n\n", out.Recovered)
		}
	}

	fmt.Println("On the baseline, the mis-speculated gadget's probe-line fill survives")
	fmt.Println("the squash in the committed D-cache. Under SafeSpec the fill only ever")
	fmt.Println("lived in the shadow D-cache and was annulled in place.")
}
