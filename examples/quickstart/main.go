// Quickstart: build a tiny program with the assembler, run it on the
// baseline out-of-order core and on SafeSpec (wait-for-commit), and compare
// the statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
)

func main() {
	// A little kernel: sum a 512-element array twice (the second pass hits
	// in the cache) and store the result.
	const (
		arrayBase  = 0x1_0000
		resultAddr = 0x2_0000
		elems      = 512
	)
	b := asm.NewBuilder()
	b.Region(arrayBase, elems*8, false)
	b.Region(resultAddr, 4096, false)
	for i := 0; i < elems; i++ {
		b.Data(arrayBase+uint64(i*8), int64(i))
	}

	b.Movi(isa.S0, arrayBase) // cursor
	b.Movi(isa.S1, 0)         // sum
	b.Movi(isa.S2, 0)         // pass counter
	b.Label("pass")
	b.Movi(isa.T0, 0) // index
	b.Movi(isa.T1, elems)
	b.Label("loop")
	b.Shli(isa.T2, isa.T0, 3)
	b.Add(isa.T2, isa.S0, isa.T2)
	b.Load(isa.T3, isa.T2, 0)
	b.Add(isa.S1, isa.S1, isa.T3)
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Addi(isa.S2, isa.S2, 1)
	b.Slti(isa.T4, isa.S2, 2)
	b.Bne(isa.T4, isa.Zero, "pass")
	b.Movi(isa.T5, resultAddr)
	b.Store(isa.S1, isa.T5, 0)
	b.Halt()
	prog := b.MustBuild()

	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"baseline (unprotected)", core.Baseline()},
		{"SafeSpec WFC", core.WFC()},
	} {
		sim := core.New(cfg.c, prog)
		res := sim.Run()
		sum, _ := sim.CPU().Mem().Read(resultAddr, true)
		fmt.Printf("%-24s sum=%-8d cycles=%-6d IPC=%.3f  dMiss=%.4f\n",
			cfg.name, sum, res.Cycles, res.IPC(), res.DReadMissRate())
	}
	fmt.Println("\nThe architectural result is identical; SafeSpec changes only where")
	fmt.Println("speculative cache fills live until their instructions commit.")
}
