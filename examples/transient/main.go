// Transient Speculation Attack walk-through (Section V / Figure 10 of the
// paper): a covert channel through the shadow structures themselves.
//
// The demo leaks a 4-bit secret one bit per run through a deliberately
// undersized (2-entry, replace-on-full) shadow D-cache under SafeSpec-WFC,
// then shows both mitigations: the worst-case ("Secure") sizing, and the
// occupancy anomaly detector sketched in the paper's Section VII.
//
//	go run ./examples/transient
package main

import (
	"fmt"

	"safespec/internal/attacks"
	"safespec/internal/core"
)

func main() {
	tsa := attacks.TSA{Secret: attacks.DefaultSecret}
	fmt.Printf("Transient Speculation Attack: planted secret = %d (binary %04b)\n\n",
		tsa.Secret, tsa.Secret)

	fmt.Println("1) SafeSpec-WFC with a 2-entry, replace-on-full shadow D-cache:")
	tiny := core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy())
	out, err := tsa.Run(tiny)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   per-bit probe times: %v cycles\n", out.BitTimes)
	fmt.Printf("   slow bit => the trojan displaced the spy's shadow entries => bit = 1\n")
	if out.Leaked {
		fmt.Printf("   LEAKED: recovered %d (binary %04b)\n\n", out.Recovered, out.Recovered)
	} else {
		fmt.Printf("   unexpectedly closed (recovered %d)\n\n", out.Recovered)
	}

	fmt.Println("2) Same attack against the Secure (worst-case) sizing:")
	out, err = tsa.Run(core.WFC())
	if err != nil {
		panic(err)
	}
	fmt.Printf("   per-bit probe times: %v cycles\n", out.BitTimes)
	if out.Leaked {
		fmt.Printf("   LEAKED (unexpected!)\n")
	} else {
		fmt.Printf("   closed: with no contention possible, every bit reads the same\n\n")
	}

	fmt.Println("3) Detection alternative (paper Section VII): watch for abnormal")
	fmt.Println("   shadow occupancy growth instead of paying the worst-case area.")
	cfg := core.WFC()
	cfg.Pipeline.DetectAnomalies = true
	prog, err := attacks.SpectreV1().Build(attacks.DefaultSecret)
	if err != nil {
		panic(err)
	}
	sim := core.New(cfg, prog)
	sim.Run()
	d, _ := sim.CPU().Detectors()
	fmt.Printf("   spectre-v1 run with watchdog: %d anomalous cycles of %d observed\n",
		d.Alarms(), d.Cycles())
	fmt.Println("   (see internal/attacks detector tests for the burst-vs-benign split)")
}
