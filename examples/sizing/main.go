// Sizing study: run one benchmark kernel with per-cycle occupancy sampling
// of the four shadow structures and print the distribution statistics the
// paper uses to size them (Figures 6-9) plus the Table V cost of both
// sizing strategies.
//
//	go run ./examples/sizing           # default benchmark (gcc)
//	go run ./examples/sizing mcf
package main

import (
	"fmt"
	"os"

	"safespec/internal/core"
	"safespec/internal/hwmodel"
	"safespec/internal/stats"
	"safespec/internal/workloads"
)

func main() {
	name := "gcc"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workloads.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := core.WFC().WithLimits(100_000, 0)
	cfg.SampleOccupancy = true
	res := core.Run(cfg, w.Build())

	fmt.Printf("benchmark %s, %d cycles sampled under SafeSpec-WFC\n\n", name, res.Cycles)
	show := func(label string, h *stats.Histogram, worstCase int) {
		fmt.Printf("%-14s mean=%6.2f  p99=%3d  p99.99=%3d  max=%3d   (worst-case bound %d)\n",
			label, h.Mean(), h.Percentile(0.99), h.Percentile(0.9999), h.Max(), worstCase)
	}
	show("shadow d-cache", res.OccD, 72)
	show("shadow i-cache", res.OccI, 224)
	show("shadow dTLB", res.OccDTLB, 72)
	show("shadow iTLB", res.OccITLB, 224)

	measured := hwmodel.ShadowSizes{
		DCache: max(1, res.OccD.Percentile(0.9999)),
		ICache: max(1, res.OccI.Percentile(0.9999)),
		DTLB:   max(1, res.OccDTLB.Percentile(0.9999)),
		ITLB:   max(1, res.OccITLB.Percentile(0.9999)),
	}
	tech := hwmodel.Tech40nm()
	fmt.Println("\nhardware cost of the two sizing strategies (Table V model):")
	fmt.Printf("  %s\n", hwmodel.Evaluate(tech, "Secure", hwmodel.SecureSizes(72, 224)))
	fmt.Printf("  %s\n", hwmodel.Evaluate(tech, "measured-99.99%", measured))
	fmt.Println("\nThe Secure sizing eliminates shadow-structure contention (and with it")
	fmt.Println("the transient covert channel of Section V) at a hardware premium.")
}
